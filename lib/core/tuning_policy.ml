(* The per-partition tuning heuristic (pure decision logic; the paper drives
   tuning "by runtime heuristics", Section 1).

   Two knobs, mirroring the paper's two motivating examples:

   Read visibility.  Visible reads make readers visible to writers, which
   "typically performs better on workloads with a high percentage of update
   transactions" (early conflict detection, no commit-time validation) "and
   worse for most other workloads" (an atomic RMW per read).  We switch to
   visible when the partition is update-heavy AND invisible reads are
   demonstrably wasting work (validation failures / extension traffic), and
   back to invisible when the partition is read-dominated.

   Conflict-detection granularity.  "Memory regions that suffer from high
   contention might benefit from coarse-grained detection ... while one
   would rather use fine-grained detection for non-contended regions."
   Coarse tables make conflicts cheap and early (one lock covers the
   region); fine tables avoid false conflicts.  We coarsen under sustained
   high conflict rates and refine when conflicts are rare.

   Concurrency-control protocol (DESIGN.md §10).  A read-dominated
   partition whose read-only transactions still pay validation (or abort
   outright) is moved to the multi-version protocol, whose history reads
   commit read-only transactions without validation; a small, update-heavy,
   high-conflict partition is moved to commit-time locking, whose reads
   touch no orec and whose single sequence lock amortises well over a tiny
   footprint.  Both revert to single-version when the signal that justified
   them decays.

   All directions use hysteresis (hi/lo thresholds) and the tuner adds a
   cooldown after each switch, so the policy cannot oscillate on a steady
   workload. *)

open Partstm_stm

type config = {
  min_attempts : int;  (* minimum sample size before deciding *)
  update_ratio_hi : float;  (* switch to visible above this ... *)
  update_ratio_lo : float;  (* ... back to invisible below this *)
  wasted_validation_hi : float;  (* (val_fails+ext)/attempts to justify visible *)
  abort_rate_hi : float;  (* coarsen above this conflict pressure ... *)
  writes_per_update_txn_hi : float;  (* ... if txns also lock several orecs *)
  small_region_tvars : int;  (* ... and the region is object-sized *)
  abort_rate_lo : float;  (* refine below this *)
  write_through_abort_lo : float;  (* switch to write-through below this ... *)
  write_through_abort_hi : float;  (* ... and back to write-back above this *)
  granularity_step : int;  (* log2 slots added/removed per decision *)
  granularity_lo : int;  (* coarsest allowed (log2 slots) *)
  granularity_hi : int;  (* finest allowed (log2 slots) *)
  mv_ro_ratio_hi : float;  (* multi-version above this read-only commit share ... *)
  mv_ro_ratio_lo : float;  (* ... back to single-version below this *)
  mv_wasted_hi : float;  (* (ro_aborts+val_fails)/attempts to justify multi-version *)
  mv_depth : int;  (* history depth proposed on a multi-version switch *)
  ctl_tvars_max : int;  (* commit-time locking only for regions this small *)
  ctl_abort_hi : float;  (* commit-time locking above this abort rate ... *)
  ctl_abort_lo : float;  (* ... back to single-version below this *)
}

(* update_ratio counts transactions that actually wrote (a failed intset add
   commits read-only), so 0.25 already indicates an update-heavy mix. *)
let default_config =
  {
    min_attempts = 200;
    update_ratio_hi = 0.25;
    update_ratio_lo = 0.08;
    wasted_validation_hi = 0.12;
    abort_rate_hi = 0.35;
    writes_per_update_txn_hi = 3.0;
    small_region_tvars = 256;
    abort_rate_lo = 0.02;
    write_through_abort_lo = 0.02;
    write_through_abort_hi = 0.15;
    granularity_step = 4;
    granularity_lo = 0;
    granularity_hi = 14;
    mv_ro_ratio_hi = 0.80;
    mv_ro_ratio_lo = 0.50;
    mv_wasted_hi = 0.02;
    mv_depth = 8;
    ctl_tvars_max = 64;
    ctl_abort_hi = 0.30;
    ctl_abort_lo = 0.05;
  }

(* What the tuner observed in a partition over one sampling period. *)
type observation = { delta : Region_stats.snapshot; current : Mode.t; tvars : int }

type decision = Keep | Switch of Mode.t

(* Structured explanation of one decision: the inputs the policy saw, the
   rules that fired ([w_triggered]) and the alternatives it considered but
   rejected, with the threshold comparison that rejected them
   ([w_rejected]).  Logged into telemetry and rendered by [partstm top];
   the decision itself is unchanged — [decide] is [fst (explain ...)]. *)
type why = {
  w_attempts : int;
  w_abort_rate : float;
  w_update_ratio : float;
  w_wasted_validation : float;
  w_writes_per_update_txn : float;
  w_ro_commit_ratio : float;
  w_ro_wasted : float;
  w_tvars : int;
  w_triggered : string list;
  w_rejected : string list;
}

let explain config { delta; current; tvars } =
  let attempts = Region_stats.attempts delta in
  let abort_rate = Region_stats.abort_rate delta in
  let update_ratio = Region_stats.update_txn_ratio delta in
  (* Only *failed* validations measure wasted work: successful extensions
     are cheap and would over-trigger the switch at low contention. *)
  let wasted =
    if attempts = 0 then 0.0
    else float_of_int delta.Region_stats.s_validation_fails /. float_of_int attempts
  in
  let update_commits = delta.Region_stats.s_commits - delta.Region_stats.s_ro_commits in
  let writes_per_update_txn =
    if update_commits = 0 then 0.0
    else float_of_int delta.Region_stats.s_writes /. float_of_int update_commits
  in
  let ro_ratio = Region_stats.ro_commit_ratio delta in
  let ro_wasted =
    if attempts = 0 then 0.0
    else
      float_of_int (delta.Region_stats.s_ro_aborts + delta.Region_stats.s_validation_fails)
      /. float_of_int attempts
  in
  let triggered = ref [] and rejected = ref [] in
  let trig fmt = Printf.ksprintf (fun m -> triggered := m :: !triggered) fmt in
  let rej fmt = Printf.ksprintf (fun m -> rejected := m :: !rejected) fmt in
  let why () =
    {
      w_attempts = attempts;
      w_abort_rate = abort_rate;
      w_update_ratio = update_ratio;
      w_wasted_validation = wasted;
      w_writes_per_update_txn = writes_per_update_txn;
      w_ro_commit_ratio = ro_ratio;
      w_ro_wasted = ro_wasted;
      w_tvars = tvars;
      w_triggered = List.rev !triggered;
      w_rejected = List.rev !rejected;
    }
  in
  if attempts < config.min_attempts then begin
    rej "sample too small: attempts %d < min_attempts %d" attempts config.min_attempts;
    (Keep, why ())
  end
  else begin
    let visibility =
      match current.Mode.visibility with
      | Mode.Invisible
        when update_ratio > config.update_ratio_hi && wasted > config.wasted_validation_hi ->
          trig "visible reads: update_ratio %.2f > %.2f and wasted validation %.3f > %.3f"
            update_ratio config.update_ratio_hi wasted config.wasted_validation_hi;
          Mode.Visible
      | Mode.Visible when update_ratio < config.update_ratio_lo ->
          trig "invisible reads: update_ratio %.2f < %.2f" update_ratio config.update_ratio_lo;
          Mode.Invisible
      | Mode.Invisible as v ->
          rej "visible reads: update_ratio %.2f <= %.2f or wasted validation %.3f <= %.3f"
            update_ratio config.update_ratio_hi wasted config.wasted_validation_hi;
          v
      | Mode.Visible as v ->
          rej "invisible reads: update_ratio %.2f >= %.2f (hysteresis)" update_ratio
            config.update_ratio_lo;
          v
    in
    let granularity =
      let g = current.Mode.granularity_log2 in
      (* Coarsening only pays when transactions acquire several locks in this
         partition (one coarse lock replaces them), conflicts are frequent
         anyway, AND the region is object-sized (the paper's coarse detection
         "at the object level, or even at the granularity of the whole
         region"); coarsening a large structure would serialize it. *)
      if
        abort_rate > config.abort_rate_hi
        && writes_per_update_txn > config.writes_per_update_txn_hi
        && tvars <= config.small_region_tvars
        && g > config.granularity_lo
      then begin
        trig "coarsen to g%d: abort_rate %.2f > %.2f, writes/update-txn %.1f > %.1f, tvars %d <= %d"
          (max config.granularity_lo (g - config.granularity_step))
          abort_rate config.abort_rate_hi writes_per_update_txn config.writes_per_update_txn_hi
          tvars config.small_region_tvars;
        max config.granularity_lo (g - config.granularity_step)
      end
      else if
        (* The dual rule: a *large* region with multi-write transactions
           under high conflict pressure is likely suffering false conflicts
           from orec aliasing — refine to separate the writers. *)
        abort_rate > config.abort_rate_hi
        && writes_per_update_txn > config.writes_per_update_txn_hi
        && tvars > config.small_region_tvars
        && g < config.granularity_hi
      then begin
        trig "refine to g%d: abort_rate %.2f > %.2f with large region (tvars %d > %d)"
          (min config.granularity_hi (g + config.granularity_step))
          abort_rate config.abort_rate_hi tvars config.small_region_tvars;
        min config.granularity_hi (g + config.granularity_step)
      end
      else if abort_rate < config.abort_rate_lo && g < config.granularity_hi then begin
        trig "refine to g%d: abort_rate %.3f < %.3f"
          (min config.granularity_hi (g + config.granularity_step))
          abort_rate config.abort_rate_lo;
        min config.granularity_hi (g + config.granularity_step)
      end
      else begin
        rej "granularity change: abort_rate %.3f within [%.3f, %.2f] band at g%d" abort_rate
          config.abort_rate_lo config.abort_rate_hi g;
        g
      end
    in
    (* Never refine past the point where the table dwarfs the traffic: a
       period that touched n locations needs at most ~4n slots. *)
    let granularity =
      let accesses = delta.Region_stats.s_reads + delta.Region_stats.s_writes in
      if granularity > current.Mode.granularity_log2 && accesses > 0 then begin
        let capped = min granularity (Partstm_util.Bits.ceil_log2 (4 * accesses)) in
        if capped < granularity then
          trig "refinement capped at g%d by period traffic (%d accesses)" capped accesses;
        capped
      end
      else granularity
    in
    (* Update strategy: write-through trades expensive aborts (undo) for
       free commits — profitable only when the partition writes and rarely
       aborts; write-back is the safe default under contention. *)
    let update =
      let writes_happen = Region_stats.update_txn_ratio delta > 0.01 in
      match current.Mode.update with
      | Mode.Write_back when writes_happen && abort_rate < config.write_through_abort_lo ->
          trig "write-through: abort_rate %.3f < %.3f with writes present" abort_rate
            config.write_through_abort_lo;
          Mode.Write_through
      | Mode.Write_through when abort_rate > config.write_through_abort_hi ->
          trig "write-back: abort_rate %.2f > %.2f" abort_rate config.write_through_abort_hi;
          Mode.Write_back
      | Mode.Write_back as u ->
          rej "write-through: abort_rate %.3f >= %.3f or no writes" abort_rate
            config.write_through_abort_lo;
          u
      | Mode.Write_through as u ->
          rej "write-back: abort_rate %.3f <= %.3f (hysteresis)" abort_rate
            config.write_through_abort_hi;
          u
    in
    (* Concurrency-control protocol.  Multi-version pays when the partition
       is read-dominated AND its read-only transactions demonstrably waste
       work under single-version (they abort, or burn failed validations);
       commit-time locking pays on a small, update-heavy partition under
       sustained conflict pressure, where one sequence lock replaces all
       orec traffic on the read side.  Each exits on the decayed form of
       its entry signal (hysteresis). *)
    let protocol =
      match current.Mode.protocol with
      | Protocol.Single_version ->
          if
            tvars <= config.ctl_tvars_max
            && abort_rate > config.ctl_abort_hi
            && update_ratio > config.update_ratio_hi
          then begin
            trig "commit-time locking: tvars %d <= %d, abort_rate %.2f > %.2f, update_ratio %.2f > %.2f"
              tvars config.ctl_tvars_max abort_rate config.ctl_abort_hi update_ratio
              config.update_ratio_hi;
            Protocol.Commit_time_lock
          end
          else if ro_ratio > config.mv_ro_ratio_hi && ro_wasted > config.mv_wasted_hi then begin
            trig "multi-version (depth %d): ro_ratio %.2f > %.2f and ro wasted %.3f > %.3f"
              config.mv_depth ro_ratio config.mv_ro_ratio_hi ro_wasted config.mv_wasted_hi;
            Protocol.Multi_version { depth = config.mv_depth }
          end
          else begin
            rej "commit-time locking: tvars %d > %d or abort_rate %.2f <= %.2f or update_ratio %.2f <= %.2f"
              tvars config.ctl_tvars_max abort_rate config.ctl_abort_hi update_ratio
              config.update_ratio_hi;
            rej "multi-version: ro_ratio %.2f <= %.2f or ro wasted %.3f <= %.3f" ro_ratio
              config.mv_ro_ratio_hi ro_wasted config.mv_wasted_hi;
            Protocol.Single_version
          end
      | Protocol.Multi_version _ as p ->
          if ro_ratio < config.mv_ro_ratio_lo then begin
            trig "leave multi-version: ro_ratio %.2f < %.2f" ro_ratio config.mv_ro_ratio_lo;
            Protocol.Single_version
          end
          else begin
            rej "leave multi-version: ro_ratio %.2f >= %.2f (hysteresis)" ro_ratio
              config.mv_ro_ratio_lo;
            p
          end
      | Protocol.Commit_time_lock ->
          if abort_rate < config.ctl_abort_lo || tvars > config.ctl_tvars_max then begin
            trig "leave commit-time locking: abort_rate %.3f < %.3f or tvars %d > %d" abort_rate
              config.ctl_abort_lo tvars config.ctl_tvars_max;
            Protocol.Single_version
          end
          else begin
            rej "leave commit-time locking: abort_rate %.2f >= %.3f (hysteresis)" abort_rate
              config.ctl_abort_lo;
            Protocol.Commit_time_lock
          end
    in
    let proposed = { Mode.visibility; granularity_log2 = granularity; update; protocol } in
    (* Normalise to a valid composition: the non-single-version protocols
       own their read path and buffering (Mode.validate rejects anything
       else). *)
    let proposed =
      match protocol with
      | Protocol.Single_version -> proposed
      | Protocol.Multi_version _ | Protocol.Commit_time_lock ->
          if proposed.Mode.visibility <> Mode.Invisible || proposed.Mode.update <> Mode.Write_back
          then
            trig "normalized to invisible/write-back: the %s protocol owns its read path"
              (Protocol.to_string protocol);
          { proposed with Mode.visibility = Mode.Invisible; update = Mode.Write_back }
    in
    if Mode.equal proposed current then (Keep, why ()) else (Switch proposed, why ())
  end

let decide config observation = fst (explain config observation)

let why_to_json w =
  Partstm_util.Json.Obj
    [
      ("attempts", Partstm_util.Json.Int w.w_attempts);
      ("abort_rate", Partstm_util.Json.Float w.w_abort_rate);
      ("update_ratio", Partstm_util.Json.Float w.w_update_ratio);
      ("wasted_validation", Partstm_util.Json.Float w.w_wasted_validation);
      ("writes_per_update_txn", Partstm_util.Json.Float w.w_writes_per_update_txn);
      ("ro_commit_ratio", Partstm_util.Json.Float w.w_ro_commit_ratio);
      ("ro_wasted", Partstm_util.Json.Float w.w_ro_wasted);
      ("tvars", Partstm_util.Json.Int w.w_tvars);
      ( "triggered",
        Partstm_util.Json.List (List.map (fun m -> Partstm_util.Json.String m) w.w_triggered) );
      ( "rejected",
        Partstm_util.Json.List (List.map (fun m -> Partstm_util.Json.String m) w.w_rejected) );
    ]

let pp_why ppf w =
  Fmt.pf ppf "inputs: attempts=%d abort=%.2f update=%.2f wasted=%.3f ro=%.2f" w.w_attempts
    w.w_abort_rate w.w_update_ratio w.w_wasted_validation w.w_ro_commit_ratio;
  List.iter (fun m -> Fmt.pf ppf "@,+ %s" m) w.w_triggered;
  List.iter (fun m -> Fmt.pf ppf "@,- %s" m) w.w_rejected
