(* The per-partition tuning heuristic (pure decision logic; the paper drives
   tuning "by runtime heuristics", Section 1).

   Two knobs, mirroring the paper's two motivating examples:

   Read visibility.  Visible reads make readers visible to writers, which
   "typically performs better on workloads with a high percentage of update
   transactions" (early conflict detection, no commit-time validation) "and
   worse for most other workloads" (an atomic RMW per read).  We switch to
   visible when the partition is update-heavy AND invisible reads are
   demonstrably wasting work (validation failures / extension traffic), and
   back to invisible when the partition is read-dominated.

   Conflict-detection granularity.  "Memory regions that suffer from high
   contention might benefit from coarse-grained detection ... while one
   would rather use fine-grained detection for non-contended regions."
   Coarse tables make conflicts cheap and early (one lock covers the
   region); fine tables avoid false conflicts.  We coarsen under sustained
   high conflict rates and refine when conflicts are rare.

   Concurrency-control protocol (DESIGN.md §10).  A read-dominated
   partition whose read-only transactions still pay validation (or abort
   outright) is moved to the multi-version protocol, whose history reads
   commit read-only transactions without validation; a small, update-heavy,
   high-conflict partition is moved to commit-time locking, whose reads
   touch no orec and whose single sequence lock amortises well over a tiny
   footprint.  Both revert to single-version when the signal that justified
   them decays.

   All directions use hysteresis (hi/lo thresholds) and the tuner adds a
   cooldown after each switch, so the policy cannot oscillate on a steady
   workload. *)

open Partstm_stm

type config = {
  min_attempts : int;  (* minimum sample size before deciding *)
  update_ratio_hi : float;  (* switch to visible above this ... *)
  update_ratio_lo : float;  (* ... back to invisible below this *)
  wasted_validation_hi : float;  (* (val_fails+ext)/attempts to justify visible *)
  abort_rate_hi : float;  (* coarsen above this conflict pressure ... *)
  writes_per_update_txn_hi : float;  (* ... if txns also lock several orecs *)
  small_region_tvars : int;  (* ... and the region is object-sized *)
  abort_rate_lo : float;  (* refine below this *)
  write_through_abort_lo : float;  (* switch to write-through below this ... *)
  write_through_abort_hi : float;  (* ... and back to write-back above this *)
  granularity_step : int;  (* log2 slots added/removed per decision *)
  granularity_lo : int;  (* coarsest allowed (log2 slots) *)
  granularity_hi : int;  (* finest allowed (log2 slots) *)
  mv_ro_ratio_hi : float;  (* multi-version above this read-only commit share ... *)
  mv_ro_ratio_lo : float;  (* ... back to single-version below this *)
  mv_wasted_hi : float;  (* (ro_aborts+val_fails)/attempts to justify multi-version *)
  mv_depth : int;  (* history depth proposed on a multi-version switch *)
  ctl_tvars_max : int;  (* commit-time locking only for regions this small *)
  ctl_abort_hi : float;  (* commit-time locking above this abort rate ... *)
  ctl_abort_lo : float;  (* ... back to single-version below this *)
}

(* update_ratio counts transactions that actually wrote (a failed intset add
   commits read-only), so 0.25 already indicates an update-heavy mix. *)
let default_config =
  {
    min_attempts = 200;
    update_ratio_hi = 0.25;
    update_ratio_lo = 0.08;
    wasted_validation_hi = 0.12;
    abort_rate_hi = 0.35;
    writes_per_update_txn_hi = 3.0;
    small_region_tvars = 256;
    abort_rate_lo = 0.02;
    write_through_abort_lo = 0.02;
    write_through_abort_hi = 0.15;
    granularity_step = 4;
    granularity_lo = 0;
    granularity_hi = 14;
    mv_ro_ratio_hi = 0.80;
    mv_ro_ratio_lo = 0.50;
    mv_wasted_hi = 0.02;
    mv_depth = 8;
    ctl_tvars_max = 64;
    ctl_abort_hi = 0.30;
    ctl_abort_lo = 0.05;
  }

(* What the tuner observed in a partition over one sampling period. *)
type observation = { delta : Region_stats.snapshot; current : Mode.t; tvars : int }

type decision = Keep | Switch of Mode.t

let decide config { delta; current; tvars } =
  let attempts = Region_stats.attempts delta in
  if attempts < config.min_attempts then Keep
  else begin
    let abort_rate = Region_stats.abort_rate delta in
    let update_ratio = Region_stats.update_txn_ratio delta in
    (* Only *failed* validations measure wasted work: successful extensions
       are cheap and would over-trigger the switch at low contention. *)
    let wasted = float_of_int delta.Region_stats.s_validation_fails /. float_of_int attempts in
    let visibility =
      match current.Mode.visibility with
      | Mode.Invisible
        when update_ratio > config.update_ratio_hi && wasted > config.wasted_validation_hi ->
          Mode.Visible
      | Mode.Visible when update_ratio < config.update_ratio_lo -> Mode.Invisible
      | current_visibility -> current_visibility
    in
    let granularity =
      let g = current.Mode.granularity_log2 in
      let update_commits = delta.Region_stats.s_commits - delta.Region_stats.s_ro_commits in
      let writes_per_update_txn =
        if update_commits = 0 then 0.0
        else float_of_int delta.Region_stats.s_writes /. float_of_int update_commits
      in
      (* Coarsening only pays when transactions acquire several locks in this
         partition (one coarse lock replaces them), conflicts are frequent
         anyway, AND the region is object-sized (the paper's coarse detection
         "at the object level, or even at the granularity of the whole
         region"); coarsening a large structure would serialize it. *)
      if
        abort_rate > config.abort_rate_hi
        && writes_per_update_txn > config.writes_per_update_txn_hi
        && tvars <= config.small_region_tvars
        && g > config.granularity_lo
      then max config.granularity_lo (g - config.granularity_step)
      else if
        (* The dual rule: a *large* region with multi-write transactions
           under high conflict pressure is likely suffering false conflicts
           from orec aliasing — refine to separate the writers. *)
        abort_rate > config.abort_rate_hi
        && writes_per_update_txn > config.writes_per_update_txn_hi
        && tvars > config.small_region_tvars
        && g < config.granularity_hi
      then min config.granularity_hi (g + config.granularity_step)
      else if abort_rate < config.abort_rate_lo && g < config.granularity_hi then
        min config.granularity_hi (g + config.granularity_step)
      else g
    in
    (* Never refine past the point where the table dwarfs the traffic: a
       period that touched n locations needs at most ~4n slots. *)
    let granularity =
      let accesses = delta.Region_stats.s_reads + delta.Region_stats.s_writes in
      if granularity > current.Mode.granularity_log2 && accesses > 0 then
        min granularity (Partstm_util.Bits.ceil_log2 (4 * accesses))
      else granularity
    in
    (* Update strategy: write-through trades expensive aborts (undo) for
       free commits — profitable only when the partition writes and rarely
       aborts; write-back is the safe default under contention. *)
    let update =
      let writes_happen = Region_stats.update_txn_ratio delta > 0.01 in
      match current.Mode.update with
      | Mode.Write_back
        when writes_happen && abort_rate < config.write_through_abort_lo ->
          Mode.Write_through
      | Mode.Write_through when abort_rate > config.write_through_abort_hi -> Mode.Write_back
      | current_update -> current_update
    in
    (* Concurrency-control protocol.  Multi-version pays when the partition
       is read-dominated AND its read-only transactions demonstrably waste
       work under single-version (they abort, or burn failed validations);
       commit-time locking pays on a small, update-heavy partition under
       sustained conflict pressure, where one sequence lock replaces all
       orec traffic on the read side.  Each exits on the decayed form of
       its entry signal (hysteresis). *)
    let protocol =
      let ro_ratio = Region_stats.ro_commit_ratio delta in
      let ro_wasted =
        float_of_int (delta.Region_stats.s_ro_aborts + delta.Region_stats.s_validation_fails)
        /. float_of_int attempts
      in
      match current.Mode.protocol with
      | Protocol.Single_version ->
          if
            tvars <= config.ctl_tvars_max
            && abort_rate > config.ctl_abort_hi
            && update_ratio > config.update_ratio_hi
          then Protocol.Commit_time_lock
          else if ro_ratio > config.mv_ro_ratio_hi && ro_wasted > config.mv_wasted_hi then
            Protocol.Multi_version { depth = config.mv_depth }
          else Protocol.Single_version
      | Protocol.Multi_version _ as p ->
          if ro_ratio < config.mv_ro_ratio_lo then Protocol.Single_version else p
      | Protocol.Commit_time_lock ->
          if abort_rate < config.ctl_abort_lo || tvars > config.ctl_tvars_max then
            Protocol.Single_version
          else Protocol.Commit_time_lock
    in
    let proposed = { Mode.visibility; granularity_log2 = granularity; update; protocol } in
    (* Normalise to a valid composition: the non-single-version protocols
       own their read path and buffering (Mode.validate rejects anything
       else). *)
    let proposed =
      match protocol with
      | Protocol.Single_version -> proposed
      | Protocol.Multi_version _ | Protocol.Commit_time_lock ->
          { proposed with Mode.visibility = Mode.Invisible; update = Mode.Write_back }
    in
    if Mode.equal proposed current then Keep else Switch proposed
  end
