(** A data partition: the unit at which STM behaviour is tuned. Wraps an
    engine-level region and carries identity/tuning metadata. *)

open Partstm_stm

type t = {
  region : Region.t;
  name : string;
  site : string;
  mutable tunable : bool;
}

val make :
  Engine.t ->
  name:string ->
  ?site:string ->
  ?mode:Mode.t ->
  ?tunable:bool ->
  unit ->
  t

val name : t -> string
val site : t -> string
val region : t -> Region.t
val tunable : t -> bool
val set_tunable : t -> bool -> unit

val mode : t -> Mode.t
val tvar_count : t -> int

val set_mode : t -> Mode.t -> unit
(** Reconfigure through the quiesce protocol; see
    {!Partstm_stm.Region.reconfigure} for the caller contract. *)

val tvar : t -> 'a -> 'a Tvar.t
(** Allocate a transactional variable inside this partition. *)

val snapshot : t -> Region_stats.snapshot

val pp : Format.formatter -> t -> unit
