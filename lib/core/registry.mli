(** Registry of the partitions of one system. *)

open Partstm_stm

type t

val create : Engine.t -> t
val engine : t -> Engine.t

val register : t -> Partition.t -> unit

val make_partition :
  t ->
  name:string ->
  ?site:string ->
  ?mode:Mode.t ->
  ?tunable:bool ->
  unit ->
  Partition.t
(** Create and register a partition (the runtime analog of the
    compiler-emitted partition creation at an allocation site). *)

val partitions : t -> Partition.t list
(** In registration order. *)

val find_by_name : t -> string -> Partition.t option
val length : t -> int

val reset_stats : t -> unit
(** Zero every partition's statistics (call after setup so reports reflect
    only the measured run). *)

type row = {
  row_name : string;
  row_site : string;
  row_mode : Mode.t;
  row_tvars : int;
  row_stats : Region_stats.snapshot;
  row_access_share : float;
}

val report : t -> row list
(** Per-partition statistics (the data behind Table R-T1). *)
