(** Facade: one partitioned-STM system = engine + partition registry.

    Typical use:
    {[
      let system = System.create () in
      let accounts = System.partition system "accounts" in
      let a = System.tvar accounts 100 and b = System.tvar accounts 0 in
      let txn = System.descriptor system ~worker_id:0 in
      System.atomically txn (fun t ->
        System.write t a (System.read t a - 10);
        System.write t b (System.read t b + 10))
    ]} *)

open Partstm_stm

type t

val create :
  ?max_workers:int ->
  ?contention_manager:Cm.t ->
  ?writer_wait_limit:int ->
  ?sample_retry_limit:int ->
  ?max_attempts:int ->
  ?fast_index:bool ->
  ?padded:bool ->
  unit ->
  t
(** [fast_index] (default [true]) selects the descriptor's indexed lookup
    paths; [padded] (default [true]) cache-line-pads the hot shared words;
    see {!Partstm_stm.Engine.create}. *)

val engine : t -> Engine.t
val registry : t -> Registry.t

val partition :
  t -> ?site:string -> ?mode:Mode.t -> ?tunable:bool -> string -> Partition.t
(** Create and register a partition. *)

val descriptor : t -> worker_id:int -> Txn.t
(** One per worker; reused across transactions. *)

val domain_descriptor : t -> Txn.t
(** The calling domain's pooled descriptor for this system: created on the
    domain's first call, returned unchanged afterwards, never shared across
    domains. Pooled worker ids are drawn from the top of the worker-id
    space ([max_workers - 1] downward) so they cannot collide with
    explicitly managed ids (allocated from 0 up). Raises
    [Invalid_argument] when the id space is exhausted. *)

val atomically : Txn.t -> (Txn.t -> 'a) -> 'a
val read : Txn.t -> 'a Tvar.t -> 'a
val write : Txn.t -> 'a Tvar.t -> 'a -> unit
val modify : Txn.t -> 'a Tvar.t -> ('a -> 'a) -> unit

val retry : Txn.t -> 'a
(** Blocking retry; see {!Partstm_stm.Txn.retry}. *)

val set_retry_hook : Txn.t -> (unit -> unit) -> unit
(** Callback after every rollback in the retry loop; see
    {!Partstm_stm.Txn.set_retry_hook}. *)

val tvar : Partition.t -> 'a -> 'a Tvar.t

val tuner :
  ?config:Tuning_policy.config -> ?cooldown:int -> ?max_trace:int -> t -> Tuner.t
