(* Facade: one STM system = engine + partition registry (+ optional tuner).
   This is the API the examples and workloads program against. *)

open Partstm_stm

type t = { engine : Engine.t; registry : Registry.t }

let create ?max_workers ?contention_manager ?writer_wait_limit ?sample_retry_limit ?max_attempts
    ?fast_index () =
  let engine =
    Engine.create ?max_workers ?contention_manager ?writer_wait_limit ?sample_retry_limit
      ?max_attempts ?fast_index ()
  in
  { engine; registry = Registry.create engine }

let engine t = t.engine
let registry t = t.registry

let partition t ?site ?mode ?tunable name = Registry.make_partition t.registry ~name ?site ?mode ?tunable ()

let descriptor t ~worker_id = Txn.create t.engine ~worker_id

let atomically = Txn.atomically
let read = Txn.read
let write = Txn.write
let modify = Txn.modify
let retry = Txn.retry
let tvar = Partition.tvar

let tuner ?config ?cooldown ?max_trace t = Tuner.create ?config ?cooldown ?max_trace t.registry
