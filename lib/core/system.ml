(* Facade: one STM system = engine + partition registry (+ optional tuner).
   This is the API the examples and workloads program against. *)

open Partstm_stm

type t = {
  engine : Engine.t;
  registry : Registry.t;
  uid : int;  (* keys the per-domain descriptor pool across systems *)
  pool_next : int Atomic.t;  (* next pooled worker id, counting DOWN *)
}

(* Process-wide system identity for the Domain.DLS pool table: tests create
   many systems per process, and a domain's cached descriptor must never
   leak from one system to another. *)
let uid_counter = Atomic.make 0

let create ?max_workers ?contention_manager ?writer_wait_limit ?sample_retry_limit ?max_attempts
    ?fast_index ?padded () =
  let engine =
    Engine.create ?max_workers ?contention_manager ?writer_wait_limit ?sample_retry_limit
      ?max_attempts ?fast_index ?padded ()
  in
  {
    engine;
    registry = Registry.create engine;
    uid = Atomic.fetch_and_add uid_counter 1;
    pool_next = Atomic.make (engine.Engine.max_workers - 1);
  }

let engine t = t.engine
let registry t = t.registry

let partition t ?site ?mode ?tunable name = Registry.make_partition t.registry ~name ?site ?mode ?tunable ()

let descriptor t ~worker_id = Txn.create t.engine ~worker_id

(* Per-domain descriptor pool: the first call on a domain creates that
   domain's descriptor, every later call returns the same one, so the
   descriptor (and its read/write sets) never migrates across domains and
   steady-state transactions allocate nothing here.  Pool worker ids are
   drawn from the TOP of the worker-id space (max_workers - 1 downward) so
   they can never collide with explicitly managed ids, which all code
   allocates from 0 upward — a collision would put two domains on one
   statistics stripe and silently lose counter updates. *)
let pool_key : (int, Txn.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let domain_descriptor t =
  let pool = Domain.DLS.get pool_key in
  match Hashtbl.find_opt pool t.uid with
  | Some txn -> txn
  | None ->
      let worker_id = Atomic.fetch_and_add t.pool_next (-1) in
      if worker_id < 0 then
        invalid_arg
          "System.domain_descriptor: worker-id pool exhausted (create the system with a larger \
           ~max_workers)";
      let txn = Txn.create t.engine ~worker_id in
      Hashtbl.add pool t.uid txn;
      txn

let atomically = Txn.atomically
let read = Txn.read
let write = Txn.write
let modify = Txn.modify
let retry = Txn.retry
let set_retry_hook = Txn.set_retry_hook
let tvar = Partition.tvar

let tuner ?config ?cooldown ?max_trace t = Tuner.create ?config ?cooldown ?max_trace t.registry
