(* Runtime tuner: periodically samples every partition's statistics, asks
   the policy for a decision, and applies mode switches through the region
   quiesce protocol.

   Scheduling is owned by the caller (a harness domain or a simulator
   fiber) which invokes [step] once per sampling period; the tuner itself is
   single-threaded — a requirement of [Region.reconfigure]. *)

open Partstm_stm

type entry = {
  e_partition : Partition.t;
  mutable e_prev : Region_stats.snapshot;
  mutable e_cooldown : int;
  mutable e_last : (int * Tuning_policy.decision * Tuning_policy.why) option;
      (* last evaluated (tick, decision, why) — Keep or Switch, for [partstm top] *)
}

type event = {
  ev_tick : int;
  ev_partition : string;
  ev_from : Mode.t;
  ev_to : Mode.t;
  ev_abort_rate : float;
  ev_update_ratio : float;
  ev_why : Tuning_policy.why;
}

type t = {
  registry : Registry.t;
  config : Tuning_policy.config;
  cooldown_periods : int;
  max_trace : int;
  mutable entries : entry list;
  mutable ticks : int;
  mutable trace : event list;  (* newest first, capped at [max_trace] *)
  mutable trace_len : int;
  mutable dropped : int;  (* events evicted from [trace] by the cap *)
  mutable switches : int;
  mutable listeners : (event -> unit) list;
}

let create ?(config = Tuning_policy.default_config) ?(cooldown = 2) ?(max_trace = 1024) registry =
  if max_trace < 1 then invalid_arg "Tuner.create: max_trace";
  {
    registry;
    config;
    cooldown_periods = cooldown;
    max_trace;
    entries = [];
    ticks = 0;
    trace = [];
    trace_len = 0;
    dropped = 0;
    switches = 0;
    listeners = [];
  }

let on_event t listener = t.listeners <- listener :: t.listeners

let record_event t event =
  if t.trace_len >= t.max_trace then begin
    (* Drop the oldest event (tail of the newest-first list). *)
    t.trace <- List.filteri (fun i _ -> i < t.max_trace - 1) t.trace;
    t.dropped <- t.dropped + (t.trace_len - (t.max_trace - 1));
    t.trace_len <- t.max_trace - 1
  end;
  t.trace <- event :: t.trace;
  t.trace_len <- t.trace_len + 1;
  List.iter (fun listener -> listener event) t.listeners

let find_entry t partition =
  List.find_opt (fun e -> e.e_partition == partition) t.entries

let sync_entries t =
  List.iter
    (fun partition ->
      match find_entry t partition with
      | Some _ -> ()
      | None ->
          t.entries <-
            {
              e_partition = partition;
              e_prev = Partition.snapshot partition;
              e_cooldown = 0;
              e_last = None;
            }
            :: t.entries)
    (Registry.partitions t.registry)

let step t =
  t.ticks <- t.ticks + 1;
  sync_entries t;
  List.iter
    (fun entry ->
      let partition = entry.e_partition in
      let current_snapshot = Partition.snapshot partition in
      let delta = Region_stats.diff ~current:current_snapshot ~previous:entry.e_prev in
      entry.e_prev <- current_snapshot;
      if entry.e_cooldown > 0 then entry.e_cooldown <- entry.e_cooldown - 1
      else if Partition.tunable partition then begin
        let current_mode = Partition.mode partition in
        let decision, why =
          Tuning_policy.explain t.config
            {
              Tuning_policy.delta;
              current = current_mode;
              tvars = Partition.tvar_count partition;
            }
        in
        entry.e_last <- Some (t.ticks, decision, why);
        match decision with
        | Tuning_policy.Keep -> ()
        | Tuning_policy.Switch new_mode ->
            Partition.set_mode partition new_mode;
            Region_stats.record_mode_switch (Partition.region partition).Region.stats;
            entry.e_cooldown <- t.cooldown_periods;
            t.switches <- t.switches + 1;
            record_event t
              {
                ev_tick = t.ticks;
                ev_partition = Partition.name partition;
                ev_from = current_mode;
                ev_to = new_mode;
                ev_abort_rate = Region_stats.abort_rate delta;
                ev_update_ratio = Region_stats.update_txn_ratio delta;
                ev_why = why;
              }
      end)
    t.entries

let ticks t = t.ticks
let switches t = t.switches
let dropped_events t = t.dropped
let trace t = List.rev t.trace

type last = {
  ld_partition : string;
  ld_tick : int;
  ld_decision : Tuning_policy.decision;
  ld_why : Tuning_policy.why;
}

(* Latest evaluated decision per partition (Keep included, unlike [trace]
   which only logs applied switches) — the data behind [partstm top]'s
   "why" pane.  Partitions still in cooldown or never yet evaluated are
   omitted. *)
let last_decisions t =
  List.filter_map
    (fun entry ->
      match entry.e_last with
      | None -> None
      | Some (tick, decision, why) ->
          Some
            {
              ld_partition = Partition.name entry.e_partition;
              ld_tick = tick;
              ld_decision = decision;
              ld_why = why;
            })
    t.entries
  |> List.sort (fun a b -> compare a.ld_partition b.ld_partition)

let pp_event ppf ev =
  Fmt.pf ppf "tick %3d  %-16s %a -> %a  (abort=%.2f update=%.2f)" ev.ev_tick ev.ev_partition
    Mode.pp ev.ev_from Mode.pp ev.ev_to ev.ev_abort_rate ev.ev_update_ratio
