(** Pure per-partition tuning heuristic (read visibility, conflict
    granularity, update strategy and concurrency-control protocol, with
    hysteresis). See the implementation header for the rationale, which
    follows the paper's Section 1 examples. *)

open Partstm_stm

type config = {
  min_attempts : int;
  update_ratio_hi : float;
  update_ratio_lo : float;
  wasted_validation_hi : float;
  abort_rate_hi : float;
  writes_per_update_txn_hi : float;
  small_region_tvars : int;
  abort_rate_lo : float;
  write_through_abort_lo : float;
  write_through_abort_hi : float;
  granularity_step : int;
  granularity_lo : int;
  granularity_hi : int;
  mv_ro_ratio_hi : float;
  mv_ro_ratio_lo : float;
  mv_wasted_hi : float;
  mv_depth : int;
  ctl_tvars_max : int;
  ctl_abort_hi : float;
  ctl_abort_lo : float;
}

val default_config : config

type observation = {
  delta : Region_stats.snapshot;  (** stats accumulated over one period *)
  current : Mode.t;
  tvars : int;  (** region size, gates object-level coarsening *)
}

type decision = Keep | Switch of Mode.t

(** Structured explanation of one decision: every input the policy looked
    at, the rules that fired and the alternatives it rejected (with the
    threshold comparison that rejected them). *)
type why = {
  w_attempts : int;
  w_abort_rate : float;
  w_update_ratio : float;
  w_wasted_validation : float;
  w_writes_per_update_txn : float;
  w_ro_commit_ratio : float;
  w_ro_wasted : float;
  w_tvars : int;
  w_triggered : string list;  (** rules that fired, in evaluation order *)
  w_rejected : string list;  (** alternatives considered and declined *)
}

val explain : config -> observation -> decision * why
(** The policy itself. [decide] is [fst (explain config obs)]; the [why]
    carries no decision authority, only the audit trail. *)

val decide : config -> observation -> decision

val why_to_json : why -> Partstm_util.Json.t
val pp_why : Format.formatter -> why -> unit
