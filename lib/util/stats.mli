(** Descriptive statistics over float samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Total on all inputs. An empty array yields the all-zero summary
    ([count = 0] distinguishes it from real data); a single sample has
    [stddev = 0] and is every percentile of itself. Sorting uses
    [Float.compare], a total order (NaNs sort after every number), so the
    result is a well-defined function of the multiset of samples —
    callers need no pre-checks. *)

val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted sorted p] linearly interpolates the [p]-th
    percentile (0-100) of an array sorted with [Float.compare]. Total on
    all inputs: the empty array yields [0.0] (the documented "no samples"
    value — no exception) and a single sample is every percentile of
    itself. *)

val empty_summary : summary
(** The all-zero summary returned by {!summarize} on an empty array. *)

type online
(** Welford online mean/variance accumulator (single writer). *)

val online : unit -> online
val add : online -> float -> unit
val online_count : online -> int
val online_mean : online -> float
val online_variance : online -> float
val online_stddev : online -> float

val ratio : int -> int -> float
(** [ratio num den] is [num/den] as a float, or 0 when [den = 0]. *)
