(** Descriptive statistics over float samples. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted sorted p] linearly interpolates the [p]-th
    percentile (0-100) of an already-sorted array. *)

type online
(** Welford online mean/variance accumulator (single writer). *)

val online : unit -> online
val add : online -> float -> unit
val online_count : online -> int
val online_mean : online -> float
val online_variance : online -> float
val online_stddev : online -> float

val ratio : int -> int -> float
(** [ratio num den] is [num/den] as a float, or 0 when [den = 0]. *)
