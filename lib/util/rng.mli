(** Deterministic pseudo-random streams (xoshiro256** seeded by splitmix64).

    Every worker owns an independent stream derived from a master seed so that
    experiment results are reproducible and independent of scheduling. *)

type t

val make : int -> t
(** [make seed] creates a master stream. *)

val split : t -> index:int -> t
(** [split t ~index] derives an independent child stream; distinct indices
    give decorrelated streams.  Does not advance [t]. *)

val seed : t -> int
(** The [make] seed this stream descends from (preserved across {!split}),
    so every failure can report a single reproducing seed. *)

val bits : t -> int
(** 62 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); bias-free. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val chance : t -> percent:int -> bool
(** True with probability [percent]/100. *)

val shuffle_in_place : t -> 'a array -> unit

type zipf
(** Precomputed Zipf(theta) sampler over [0, n). *)

val zipf : n:int -> theta:float -> zipf
val zipf_sample : t -> zipf -> int
