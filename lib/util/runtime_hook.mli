(** Execution-environment hook: routes STM engine events either to no-ops
    (real-domain execution) or to the virtual-time simulator. *)

type event =
  | Step of int  (** generic work, n abstract cycles *)
  | Read_invisible
  | Read_visible  (** first visible read of an orec: atomic RMW *)
  | Lock_acquire
  | Write_entry
  | Commit_fixed
  | Validate_entry
  | Abort_restart
  | First_touch  (** partition in-flight registration *)
  | Backoff of int  (** contention-manager delay, n cycles *)

val charge : event -> unit
(** Report an engine event. No-op by default. *)

val relax : unit -> unit
(** Spin-wait pause. [Domain.cpu_relax] by default; a 1-cycle yield under the
    simulator. *)

val critical : (unit -> unit) -> unit
(** Run an engine phase that must not be interrupted by fault injection
    (e.g. the commit publish/release sequence). Identity by default; the
    simulator environment installs a kill mask. *)

val install :
  ?critical:((unit -> unit) -> unit) ->
  charge:(event -> unit) ->
  relax:(unit -> unit) ->
  unit ->
  unit
(** Replace the hooks. Must not be called while workers are running. *)

val reset : unit -> unit
(** Restore the domain-mode defaults. *)
