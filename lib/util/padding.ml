(* Cache-line padding for contended atomics.

   OCaml 5.1 has no [Atomic.make_contended] (that arrives in 5.2) and no
   atomic arrays, so an `int Atomic.t array` is an array of pointers to
   2-word heap blocks; the allocator packs those blocks back to back and up
   to four of them share one 64-byte cache line.  Under real domains every
   CAS on one orec then invalidates its neighbours' lines — classic false
   sharing, measured by bench/exp_d1.

   [atomic_int] is the portable stand-in: it allocates the atomic's block
   with [cache_line_words - 1] unused trailing words, so the mutable word
   and the next block's mutable word can never share a line (128 bytes also
   clears the adjacent-line prefetcher).  This is the same technique as
   multicore-magic's [copy_as_padded] / OCaml 5.2's [Atomic.make_contended]:
   an [Atomic.t] is a single-field block and none of its operations read
   the block size, so a longer block behaves identically.  The padding
   words are immediate ints, so the GC scans them for free.

   Only [int] payloads are exposed: an immediate payload keeps the padded
   block pointer-free in practice and sidesteps any question about what the
   GC does with the spare fields. *)

let cache_line_words = 16  (* 128 bytes on 64-bit: 2 lines, beats prefetch pairing *)

let atomic_int initial : int Atomic.t =
  let block = Obj.new_block 0 cache_line_words in
  Obj.set_field block 0 (Obj.repr (Sys.opaque_identity initial));
  for i = 1 to cache_line_words - 1 do
    Obj.set_field block i (Obj.repr 0)
  done;
  (Obj.magic block : int Atomic.t)

let atomic_array ~len initial = Array.init len (fun _ -> atomic_int initial)

(* Diagnostic for tests: the block size (in words) backing an atomic. *)
let block_words (a : int Atomic.t) = Obj.size (Obj.repr a)
