(* Small integer utilities shared by the STM engine and the harness. *)

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Largest power of two representable in a native int (2^61 on 64-bit:
   max_int = 2^62 - 1). *)
let max_power_of_two = 1 lsl 61

(* [n land -n] is 0 for [n = 0] (infinite loop) and the rounding silently
   wraps negative near [max_int], so both ends are guarded like
   [floor_log2]. *)
let ceil_power_of_two n =
  if n <= 0 then invalid_arg "Bits.ceil_power_of_two";
  if n > max_power_of_two then invalid_arg "Bits.ceil_power_of_two: overflow";
  let rec round n = if is_power_of_two n then n else round (n + (n land -n)) in
  round n

let floor_log2 n =
  if n <= 0 then invalid_arg "Bits.floor_log2";
  let rec loop acc n = if n = 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let ceil_log2 n = floor_log2 (ceil_power_of_two n)

let popcount n =
  let rec loop acc n = if n = 0 then acc else loop (acc + 1) (n land (n - 1)) in
  loop 0 n

(* Fibonacci-style multiplicative hash followed by an avalanche step; used to
   spread tvar ids over lock-table slots.  Constants are the splitmix64 ones
   truncated to OCaml's 63-bit native int (hash quality, not bit-exactness,
   is what matters here). *)
let mix_int x =
  let x = x * 0x1E3779B97F4A7C15 in
  let x = x lxor (x lsr 30) in
  let x = x * 0x3F58476D1CE4E5B9 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x14D049BB133111EB in
  (x lxor (x lsr 31)) land max_int

let hash_to_slot ~slots x =
  (* [slots] must be a power of two. *)
  mix_int x land (slots - 1)
