(* Minimal CSV emission so bench series can be re-plotted externally. *)

let quote_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buffer = Buffer.create (String.length cell + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      cell;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else cell

let row_to_string row = String.concat "," (List.map quote_cell row)

let write_file path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun row -> output_string oc (row_to_string row ^ "\n")) rows)
