(* Minimal CSV emission and parsing so bench/telemetry series can be
   re-plotted externally and read back in tests. *)

let quote_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buffer = Buffer.create (String.length cell + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      cell;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else cell

let row_to_string row = String.concat "," (List.map quote_cell row)

let write_file path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun row -> output_string oc (row_to_string row ^ "\n")) rows)

(* Parser for the dialect [row_to_string] emits: comma separator, double
   quotes around cells containing commas/quotes/newlines, quotes doubled
   inside quoted cells, rows ending in '\n' (final newline optional). *)
let parse_string input =
  let rows = ref [] in
  let row = ref [] in
  let cell = Buffer.create 16 in
  let flush_cell () =
    row := Buffer.contents cell :: !row;
    Buffer.clear cell
  in
  let flush_row () =
    flush_cell ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let n = String.length input in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = input.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && input.[!i + 1] = '"' then begin
          Buffer.add_char cell '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char cell c
    end
    else begin
      match c with
      | '"' -> in_quotes := true
      | ',' -> flush_cell ()
      | '\n' -> flush_row ()
      | '\r' -> ()  (* tolerate CRLF input *)
      | c -> Buffer.add_char cell c
    end;
    incr i
  done;
  if Buffer.length cell > 0 || !row <> [] then flush_row ();
  List.rev !rows

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))
