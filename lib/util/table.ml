(* Aligned ASCII tables: how benches print the rows a paper table/figure
   series would contain. *)

type align = Left | Right

type t = { title : string; header : string list; mutable rows : string list list }

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let add_rowf t fmt = Format.kasprintf (fun s -> add_row t (String.split_on_char '\t' s)) fmt

let column_widths t =
  let all = t.header :: List.rev t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  List.iter measure all;
  widths

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render ?(align = fun col -> if col = 0 then Left else Right) t =
  let widths = column_widths t in
  let buffer = Buffer.create 256 in
  let line ch =
    Array.iter (fun w -> Buffer.add_string buffer (String.make (w + 2) ch)) widths;
    Buffer.add_char buffer '\n'
  in
  let emit row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buffer (pad (align i) widths.(i) cell);
        Buffer.add_string buffer "  ")
      row;
    Buffer.add_char buffer '\n'
  in
  Buffer.add_string buffer ("== " ^ t.title ^ " ==\n");
  emit t.header;
  line '-';
  List.iter emit (List.rev t.rows);
  Buffer.contents buffer

let print ?align t = print_string (render ?align t)
