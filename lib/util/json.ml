(* Minimal JSON tree, printer and parser — just enough for the telemetry
   exports to be written and read back without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- Printing ---------------------------------------------------------------- *)

let escape_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let float_to_string f =
  if Float.is_nan f then "null"  (* NaN has no JSON encoding *)
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest decimal form that parses back to the same double. *)
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short
    else
      let mid = Printf.sprintf "%.15g" f in
      if float_of_string mid = f then mid else Printf.sprintf "%.17g" f

let rec write buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f -> Buffer.add_string buffer (float_to_string f)
  | String s -> escape_string buffer s
  | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          write buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buffer ',';
          escape_string buffer key;
          Buffer.add_char buffer ':';
          write buffer value)
        fields;
      Buffer.add_char buffer '}'

let to_string value =
  let buffer = Buffer.create 256 in
  write buffer value;
  Buffer.contents buffer

(* -- Parsing ----------------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun message -> raise (Parse_error message)) fmt

type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> parse_error "expected %C at offset %d, got %C" ch c.pos got
  | None -> parse_error "expected %C at offset %d, got end of input" ch c.pos

let expect_literal c literal value =
  let n = String.length literal in
  if c.pos + n <= String.length c.input && String.sub c.input c.pos n = literal then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

(* Encode a BMP code point as UTF-8 (enough for the \uXXXX escapes we accept). *)
let add_utf8 buffer code =
  if code < 0x80 then Buffer.add_char buffer (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body c =
  expect c '"';
  let buffer = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string at offset %d" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buffer '"'; loop ()
        | Some '\\' -> advance c; Buffer.add_char buffer '\\'; loop ()
        | Some '/' -> advance c; Buffer.add_char buffer '/'; loop ()
        | Some 'n' -> advance c; Buffer.add_char buffer '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buffer '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buffer '\r'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buffer '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buffer '\012'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.input then
              parse_error "truncated \\u escape at offset %d" c.pos;
            let hex = String.sub c.input c.pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> add_utf8 buffer code
            | None -> parse_error "invalid \\u escape %S at offset %d" hex c.pos);
            c.pos <- c.pos + 4;
            loop ()
        | Some other -> parse_error "invalid escape \\%C at offset %d" other c.pos
        | None -> parse_error "unterminated escape at offset %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buffer ch;
        loop ()
  in
  loop ();
  Buffer.contents buffer

let parse_number c =
  let start = c.pos in
  let is_number_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while match peek c with Some ch when is_number_char ch -> advance c; true | _ -> false do
    ()
  done;
  let text = String.sub c.input start (c.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> parse_error "invalid number %S at offset %d" text start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input at offset %d" c.pos
  | Some 'n' -> expect_literal c "null" Null
  | Some 't' -> expect_literal c "true" (Bool true)
  | Some 'f' -> expect_literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let item = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (item :: acc)
          | Some ']' ->
              advance c;
              List.rev (item :: acc)
          | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let value = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, value) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, value) :: acc)
          | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
        in
        Obj (fields [])
      end
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some other -> parse_error "unexpected character %C at offset %d" other c.pos

let of_string input =
  try
    let c = { input; pos = 0 } in
    let value = parse_value c in
    skip_ws c;
    if c.pos <> String.length input then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok value
  with Parse_error message -> Error message

(* -- Merging ----------------------------------------------------------------- *)

(* Right-biased recursive object merge with a stable, deterministic key
   order: keys already in [base] keep their position (objects merged
   recursively, anything else replaced by [update]'s value); keys new in
   [update] are appended in [update]'s order.  Non-object values take
   [update].  Writing a bench arm's report through [merge] over the
   committed BENCH_*.json therefore refreshes that arm's keys without
   clobbering keys another arm wrote, and re-running the same arms
   reproduces the file byte for byte. *)
let rec merge base update =
  match (base, update) with
  | Obj base_fields, Obj update_fields ->
      let merged =
        List.map
          (fun (key, base_value) ->
            match List.assoc_opt key update_fields with
            | Some update_value -> (key, merge base_value update_value)
            | None -> (key, base_value))
          base_fields
      in
      let appended =
        List.filter (fun (key, _) -> not (List.mem_assoc key base_fields)) update_fields
      in
      Obj (merged @ appended)
  | _, update -> update

(* -- Canonical form ----------------------------------------------------------- *)

(* Recursively sort object keys (stable, byte order).  Producers that build
   objects from hash tables or other iteration-order-dependent sources pass
   their snapshot through [canonical] before [to_string], so metrics and
   telemetry artifacts are byte-diffable across runs.  List order is
   preserved — it is data, not presentation. *)
let rec canonical = function
  | Obj fields ->
      let fields = List.map (fun (key, value) -> (key, canonical value)) fields in
      Obj (List.stable_sort (fun (a, _) (b, _) -> String.compare a b) fields)
  | List items -> List (List.map canonical items)
  | other -> other

(* -- Accessors (for tests and report consumers) ------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function String s -> Some s | _ -> None

(* -- Committed-artifact rewrite ----------------------------------------------- *)

(* Atomic read-merge-write for committed BENCH_*.json artifacts.  The new
   document is merged over whatever is already on disk (see [merge]) and
   written to a temporary file in the same directory, then renamed into
   place — a rename is atomic on POSIX filesystems, so an interrupted run
   can never commit a truncated artifact for the perf-regression gate to
   misparse.  An existing file that fails to parse is treated as absent. *)
let merge_into_file ~path doc =
  let existing =
    if not (Sys.file_exists path) then Obj []
    else
      let ic = open_in_bin path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match of_string contents with Ok existing -> existing | Error _ -> Obj []
  in
  let merged = merge existing doc in
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  (match
     let oc = open_out tmp in
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () ->
         output_string oc (to_string merged);
         output_char oc '\n')
   with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path
