(** Minimal JSON tree, printer and parser (no external dependency); used by
    the telemetry exports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering. NaN floats become [null]. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (trailing garbage is an error). *)

val merge : t -> t -> t
(** [merge base update]: right-biased recursive object merge with a stable
    key order — [base]'s keys keep their position (objects merged
    recursively, other values replaced), [update]'s new keys are appended
    in order; non-object values take [update]. Lets a bench arm refresh
    its keys in a committed report without clobbering other arms'. *)

val canonical : t -> t
(** Recursively sort object keys (stable, byte order); list order is
    preserved. Pass snapshots built from iteration-order-dependent sources
    (hash tables) through [canonical] before {!to_string} so exported
    artifacts are byte-diffable across runs. *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option

val merge_into_file : path:string -> t -> unit
(** [merge_into_file ~path doc] merges [doc] over the JSON document at
    [path] (missing or unparseable files count as empty) and rewrites the
    file atomically: the merged bytes go to a temporary file in the same
    directory which is then renamed over [path], so a crashed or
    interrupted run can never leave a truncated artifact behind. *)
