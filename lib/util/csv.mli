(** Minimal CSV emission. *)

val quote_cell : string -> string
val row_to_string : string list -> string
val write_file : string -> string list list -> unit
