(** Minimal CSV emission and parsing. *)

val quote_cell : string -> string
val row_to_string : string list -> string
val write_file : string -> string list list -> unit

val parse_string : string -> string list list
(** Parse the dialect {!row_to_string} emits (quoted cells, doubled quotes,
    newline-terminated rows). Inverse of emission for well-formed input. *)

val read_file : string -> string list list
