(* Descriptive statistics over float samples; used by the harness to
   summarise repeated benchmark runs. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* Total on all inputs: the empty array yields 0.0 (the documented "no
   samples" value — no exception), a single sample is every percentile of
   itself, and NaN samples order last under [Float.compare], so the result
   is always a well-defined function of the multiset of samples. *)
let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let empty_summary =
  { count = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0 }

let summarize samples =
  let n = Array.length samples in
  if n = 0 then empty_summary
  else
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let sum = Array.fold_left ( +. ) 0.0 sorted in
  let mean = sum /. float_of_int n in
  let sq_diff = Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 sorted in
  let stddev = if n > 1 then sqrt (sq_diff /. float_of_int (n - 1)) else 0.0 in
  {
    count = n;
    mean;
    stddev;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile_of_sorted sorted 50.0;
    p90 = percentile_of_sorted sorted 90.0;
    p99 = percentile_of_sorted sorted 99.0;
  }

(* Welford's online mean/variance; single-writer. *)
type online = { mutable n : int; mutable mean : float; mutable m2 : float }

let online () = { n = 0; mean = 0.0; m2 = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean))

let online_count t = t.n
let online_mean t = t.mean
let online_variance t = if t.n > 1 then t.m2 /. float_of_int (t.n - 1) else 0.0
let online_stddev t = sqrt (online_variance t)

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
