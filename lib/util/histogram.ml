(* Power-of-two bucketed histogram for non-negative integer observations
   (latencies in cycles, read-set sizes, ...).  Single-writer. *)

type t = { buckets : int array; mutable count : int; mutable sum : int; mutable max_seen : int }

let bucket_count = 62

let create () = { buckets = Array.make bucket_count 0; count = 0; sum = 0; max_seen = 0 }

let bucket_of_value v = if v <= 0 then 0 else Bits.floor_log2 v + 1

let observe t v =
  let v = max v 0 in
  let b = min (bucket_of_value v) (bucket_count - 1) in
  t.buckets.(b) <- t.buckets.(b) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count
let max_value t = t.max_seen

(* Inclusive upper bound of bucket [b]: bucket 0 holds exactly 0, bucket b
   holds (2^(b-1), 2^b]. *)
let bucket_upper b = if b = 0 then 0 else 1 lsl b

let buckets t =
  let rec collect b acc =
    if b < 0 then acc
    else if t.buckets.(b) = 0 then collect (b - 1) acc
    else collect (b - 1) ((bucket_upper b, t.buckets.(b)) :: acc)
  in
  collect (bucket_count - 1) []

let percentile t p =
  (* Upper bound of the bucket containing the p-th percentile.  The target
     rank is clamped to at least 1 so that p = 0 lands on the first
     non-empty bucket (the minimum observation's bucket) rather than on
     bucket 0 even when bucket 0 is empty. *)
  if t.count = 0 then 0
  else
    let target = max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count))) in
    let rec loop acc b =
      if b >= bucket_count then t.max_seen
      else
        let acc = acc + t.buckets.(b) in
        if acc >= target then bucket_upper b else loop acc (b + 1)
    in
    loop 0 0

(* Observations known to be <= [limit]: the buckets whose inclusive upper
   bound is <= [limit].  The bucket straddling [limit] counts as above it,
   so thresholds effectively round down to a bucket boundary — conservative
   for SLO accounting (never under-reports violations). *)
let count_le t limit =
  let rec loop acc b =
    if b >= bucket_count || bucket_upper b > limit then acc
    else loop (acc + t.buckets.(b)) (b + 1)
  in
  if limit < 0 then 0 else loop 0 0

let merge_into ~dst src =
  Array.iteri (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n) src.buckets;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen

let copy t =
  { buckets = Array.copy t.buckets; count = t.count; sum = t.sum; max_seen = t.max_seen }

(* Bucket-wise window between two snapshots of the same (monotonically
   growing) histogram.  The window maximum is not derivable from bucket
   counts, so [max_seen] is carried over from [current] (cumulative max —
   documented in the mli). *)
let diff ~current ~previous =
  let d = create () in
  for b = 0 to bucket_count - 1 do
    d.buckets.(b) <- max 0 (current.buckets.(b) - previous.buckets.(b))
  done;
  d.count <- max 0 (current.count - previous.count);
  d.sum <- max 0 (current.sum - previous.sum);
  d.max_seen <- current.max_seen;
  d

let reset t =
  Array.fill t.buckets 0 bucket_count 0;
  t.count <- 0;
  t.sum <- 0;
  t.max_seen <- 0

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("mean", Json.Float (mean t));
      ("max", Json.Int t.max_seen);
      ("p50", Json.Int (percentile t 50.0));
      ("p95", Json.Int (percentile t 95.0));
      ("p99", Json.Int (percentile t 99.0));
      ( "buckets",
        Json.List
          (List.map
             (fun (upper, n) -> Json.Obj [ ("le", Json.Int upper); ("n", Json.Int n) ])
             (buckets t)) );
    ]

(* Single-record summary for reports.  Total on all inputs: an empty
   histogram yields the all-zero summary (count 0 distinguishes it), never
   NaN or an exception — Report.latency_table renders it as "n/a". *)
type summary = {
  h_count : int;
  h_sum : int;
  h_mean : float;
  h_max : int;
  h_p50 : int;
  h_p95 : int;
  h_p99 : int;
}

let summary t =
  {
    h_count = t.count;
    h_sum = t.sum;
    h_mean = mean t;
    h_max = t.max_seen;
    h_p50 = percentile t 50.0;
    h_p95 = percentile t 95.0;
    h_p99 = percentile t 99.0;
  }

let pp ppf t =
  Fmt.pf ppf "count=%d mean=%.1f max=%d p50<=%d p99<=%d" t.count (mean t) t.max_seen
    (percentile t 50.0) (percentile t 99.0)
