(** Zipf(θ)-distributed rank generator over [0, n) — the YCSB key
    distribution.  Gray et al.'s inverse-CDF method ("Quickly Generating
    Billion-Record Synthetic Databases", SIGMOD '94): the generalized
    harmonic number ζ(n, θ) is precomputed once at {!make}, after which
    every {!sample} is O(1) — one uniform draw and a handful of float
    operations, no per-sample search and no O(n) CDF table.

    Rank 0 is the hottest key: P(rank = k) = (1/(k+1)^θ) / ζ(n, θ).
    θ = 0 degenerates to the uniform distribution; θ must be in [0, 1)
    (the Gray inversion needs 1 - θ > 0; YCSB's default is θ = 0.99).

    Determinism: a sampler holds no mutable state — all randomness comes
    from the {!Rng.t} passed to {!sample}, so per-worker streams derived
    with {!Rng.split} yield independent, reproducible key sequences and
    the sampler itself can be shared between workers. *)

type t

val make : n:int -> theta:float -> t
(** Precompute ζ(n, θ) and the inversion constants.  O(n) once.
    Raises [Invalid_argument] unless [n > 0] and [0 <= theta < 1]. *)

val n : t -> int
val theta : t -> float

val sample : t -> Rng.t -> int
(** Draw one rank in [0, n); rank 0 is the most probable. O(1). *)

val zeta : n:int -> theta:float -> float
(** The generalized harmonic number ζ(n, θ) = Σ_{i=1..n} 1/i^θ — exposed
    so tests can compare observed key masses against the closed form. *)

val mass : t -> rank:int -> float
(** Expected probability of [rank]: (1/(rank+1)^θ) / ζ(n, θ). *)
