(** Cache-line-padded atomics (OCaml 5.1 stand-in for
    [Atomic.make_contended]): the atomic's heap block is allocated with
    trailing padding words so no two padded atomics share a cache line.
    Semantics are identical to [Atomic.make]; only the block size differs. *)

val cache_line_words : int
(** Words per padded block (128 bytes on 64-bit: defeats false sharing and
    adjacent-line prefetch pairing). *)

val atomic_int : int -> int Atomic.t
(** A fresh atomic on its own cache line. *)

val atomic_array : len:int -> int -> int Atomic.t array
(** [len] independent padded atomics, each initialised to the given value. *)

val block_words : int Atomic.t -> int
(** Size in words of the block backing [a] (diagnostic; [cache_line_words]
    for padded atomics, 1 for [Atomic.make]). *)
