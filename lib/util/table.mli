(** Aligned ASCII tables for benchmark/report output. *)

type align = Left | Right
type t

val create : title:string -> header:string list -> t
val add_row : t -> string list -> unit

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Format a row; tab characters separate cells. *)

val render : ?align:(int -> align) -> t -> string
(** Render with per-column alignment (default: first column left, rest
    right). *)

val print : ?align:(int -> align) -> t -> unit
