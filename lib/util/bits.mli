(** Small integer utilities shared by the STM engine and the harness. *)

val is_power_of_two : int -> bool
(** [is_power_of_two n] is true iff [n] is a positive power of two. *)

val max_power_of_two : int
(** Largest power of two representable in a native int ([2^61] on
    64-bit); the upper bound accepted by {!ceil_power_of_two}. *)

val ceil_power_of_two : int -> int
(** Smallest power of two [>= n]. Raises [Invalid_argument] on
    non-positive input and when the result would overflow a native int
    (i.e. [n > 2^61] on 64-bit). *)

val floor_log2 : int -> int
(** Floor of log2; raises [Invalid_argument] on non-positive input. *)

val ceil_log2 : int -> int
(** Ceiling of log2; raises [Invalid_argument] on non-positive input. *)

val popcount : int -> int
(** Number of set bits. *)

val mix_int : int -> int
(** splitmix64 avalanche mix; a cheap high-quality integer hash. *)

val hash_to_slot : slots:int -> int -> int
(** [hash_to_slot ~slots x] hashes [x] into [0 .. slots-1]. [slots] must be a
    power of two. *)
