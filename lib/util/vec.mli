(** Growable array with O(1) amortised push and O(1) clear; reusable across
    transaction attempts.  Not thread-safe (one owner). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val clear : 'a t -> unit
(** Resets the length; does not drop element references (see
    {!deep_clear}). *)

val deep_clear : 'a t -> unit
(** Resets the length and overwrites capacity with the dummy, releasing
    references. *)

val wipe : 'a t -> unit
(** Resets the length and overwrites the used prefix [0, length) with the
    dummy: releases every element reference like {!deep_clear}, but in
    O(length) rather than O(capacity). *)

val resident : 'a t -> int
(** Number of slots in the whole backing array (not just [0, length))
    holding something other (physically) than the dummy — i.e. element
    references the vec still pins. Diagnostic for leak tests. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val find_opt : ('a -> bool) -> 'a t -> 'a option
val count : ('a -> bool) -> 'a t -> int
val to_list : 'a t -> 'a list
