(* Zipf(θ) rank generator, Gray et al. inverse-CDF method (SIGMOD '94),
   as used by YCSB's ZipfianGenerator.  ζ(n, θ) is precomputed at [make];
   sampling inverts the CDF in closed form, so each draw costs one uniform
   variate and O(1) float work.

   The inversion: with u ~ U(0,1), uz = u·ζ(n,θ),
     uz < 1            -> rank 0
     uz < 1 + (1/2)^θ  -> rank 1
     otherwise         -> ⌊n · (η·u - η + 1)^α⌋
   where α = 1/(1-θ) and η = (1 - (2/n)^(1-θ)) / (1 - ζ(2,θ)/ζ(n,θ)).
   The first two branches make the approximation exact for the two hottest
   ranks, which carry most of the skew. *)

type t = {
  z_n : int;
  z_theta : float;
  z_zetan : float;
  z_alpha : float;  (* 1 / (1 - θ) *)
  z_eta : float;
  z_half_pow_theta : float;  (* (1/2)^θ *)
}

let zeta ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.zeta";
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let make ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.make: n must be positive";
  if theta < 0.0 || theta >= 1.0 then invalid_arg "Zipf.make: theta must be in [0, 1)";
  let zetan = zeta ~n ~theta in
  let zeta2 = if n >= 2 then zeta ~n:2 ~theta else zetan in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    if n >= 2 then
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    else 1.0
  in
  {
    z_n = n;
    z_theta = theta;
    z_zetan = zetan;
    z_alpha = alpha;
    z_eta = eta;
    z_half_pow_theta = Float.pow 0.5 theta;
  }

let n t = t.z_n
let theta t = t.z_theta

let sample t rng =
  if t.z_n = 1 then 0
  else if t.z_theta = 0.0 then Rng.int rng t.z_n
  else begin
    let u = Rng.float rng in
    let uz = u *. t.z_zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.z_half_pow_theta then 1
    else
      let r =
        int_of_float
          (float_of_int t.z_n *. Float.pow ((t.z_eta *. u) -. t.z_eta +. 1.0) t.z_alpha)
      in
      (* Float rounding can graze the upper edge; clamp into range. *)
      if r >= t.z_n then t.z_n - 1 else if r < 0 then 0 else r
  end

let mass t ~rank =
  if rank < 0 || rank >= t.z_n then invalid_arg "Zipf.mass";
  if t.z_theta = 0.0 then 1.0 /. float_of_int t.z_n
  else 1.0 /. Float.pow (float_of_int (rank + 1)) t.z_theta /. t.z_zetan
