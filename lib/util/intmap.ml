(* Open-addressing hash map from non-negative int keys to int values,
   built for the STM descriptor fast paths (Txn's write-set / lock-set /
   visible-hold indexes):

   - power-of-two capacity, linear probing from [Bits.mix_int key];
   - O(1) amortised insert and lookup, no boxing, no option allocation on
     the hot path ([find] returns -1 for absence);
   - O(1) [clear] by epoch stamping: each slot carries the epoch in which
     it was written and is live only while the stamp matches the map's
     current epoch, so resetting the map between transaction attempts is
     one integer increment — no per-attempt allocation or array fill.

   Not thread-safe (one owner, like the descriptor that embeds it). *)

type t = {
  mutable keys : int array;
  mutable values : int array;
  mutable stamps : int array;  (* slot live iff [stamps.(i) = epoch] *)
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable epoch : int;
  mutable live : int;  (* live entries at the current epoch *)
}

let absent = -1

let create ?(capacity = 16) () =
  let capacity = Bits.ceil_power_of_two (max 8 capacity) in
  {
    keys = Array.make capacity 0;
    values = Array.make capacity 0;
    stamps = Array.make capacity 0;
    mask = capacity - 1;
    epoch = 1;
    live = 0;
  }

let length t = t.live
let capacity t = t.mask + 1

let clear t =
  (* Epoch wrap is unreachable in practice (2^62 clears); the guard keeps
     the stamp trick sound anyway. *)
  if t.epoch = max_int then begin
    Array.fill t.stamps 0 (Array.length t.stamps) 0;
    t.epoch <- 1
  end
  else t.epoch <- t.epoch + 1;
  t.live <- 0

let check_key key = if key < 0 then invalid_arg "Intmap: negative key"

(* Probe loops are top-level recursive functions, not local [let rec]
   closures: [find]/[set] run several times per transaction on the STM
   descriptor's zero-allocation fast path, and a closure capturing [t] and
   [key] would allocate on every call. *)
let rec find_probe t key i =
  if t.stamps.(i) <> t.epoch then absent
  else if t.keys.(i) = key then t.values.(i)
  else find_probe t key ((i + 1) land t.mask)

let find t key =
  check_key key;
  find_probe t key (Bits.mix_int key land t.mask)

let mem t key = find t key >= 0

let rec set_probe t key value i =
  if t.stamps.(i) <> t.epoch then begin
    (* Free slot: insert here, growing first when the load factor would
       pass 1/2 (keeps probe chains short). *)
    if 2 * (t.live + 1) > t.mask + 1 then begin
      grow t;
      set t key value
    end
    else begin
      t.keys.(i) <- key;
      t.values.(i) <- value;
      t.stamps.(i) <- t.epoch;
      t.live <- t.live + 1
    end
  end
  else if t.keys.(i) = key then t.values.(i) <- value
  else set_probe t key value ((i + 1) land t.mask)

and set t key value =
  check_key key;
  set_probe t key value (Bits.mix_int key land t.mask)

and grow t =
  let old_keys = t.keys and old_values = t.values and old_stamps = t.stamps in
  let old_epoch = t.epoch in
  let capacity = 2 * (t.mask + 1) in
  t.keys <- Array.make capacity 0;
  t.values <- Array.make capacity 0;
  t.stamps <- Array.make capacity 0;
  t.mask <- capacity - 1;
  t.epoch <- 1;
  t.live <- 0;
  Array.iteri
    (fun i stamp -> if stamp = old_epoch then set t old_keys.(i) old_values.(i))
    old_stamps

let iter f t =
  Array.iteri (fun i stamp -> if stamp = t.epoch then f t.keys.(i) t.values.(i)) t.stamps
