(** Power-of-two bucketed histogram for non-negative integers. Single-writer;
    concurrent readers may observe torn (but memory-safe) snapshots. *)

type t

val create : unit -> t
val observe : t -> int -> unit
val count : t -> int
val mean : t -> float
val max_value : t -> int

val percentile : t -> float -> int
(** Upper bound of the bucket containing the requested percentile. [p = 0]
    names the first non-empty bucket (the minimum observation's bucket). *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(inclusive upper bound, count)], ascending.
    Bucket 0 holds exactly the value 0; bucket [b] holds
    [(2^(b-1), 2^b]]. *)

val to_json : t -> Json.t
(** Summary object: count/sum/mean/max, p50/p95/p99, and {!buckets}. *)

val merge_into : dst:t -> t -> unit
val reset : t -> unit
val pp : Format.formatter -> t -> unit
