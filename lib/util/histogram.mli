(** Power-of-two bucketed histogram for non-negative integers. Single-writer;
    concurrent readers may observe torn (but memory-safe) snapshots. *)

type t

val create : unit -> t
val observe : t -> int -> unit
val count : t -> int
val mean : t -> float
val max_value : t -> int

val percentile : t -> float -> int
(** Upper bound of the bucket containing the requested percentile. *)

val merge_into : dst:t -> t -> unit
val reset : t -> unit
val pp : Format.formatter -> t -> unit
