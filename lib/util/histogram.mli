(** Power-of-two bucketed histogram for non-negative integers. Single-writer;
    concurrent readers may observe torn (but memory-safe) snapshots. *)

type t

val create : unit -> t
val observe : t -> int -> unit
val count : t -> int

val sum : t -> int
(** Sum of all observed values. *)

val mean : t -> float
(** [0.0] when the histogram is empty. *)

val max_value : t -> int

val percentile : t -> float -> int
(** Upper bound of the bucket containing the requested percentile. [p = 0]
    names the first non-empty bucket (the minimum observation's bucket). *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(inclusive upper bound, count)], ascending.
    Bucket 0 holds exactly the value 0; bucket [b] holds
    [(2^(b-1), 2^b]]. *)

val to_json : t -> Json.t
(** Summary object: count/sum/mean/max, p50/p95/p99, and {!buckets}. *)

val count_le : t -> int -> int
(** Observations known to be [<= limit]: the total count of buckets whose
    inclusive upper bound is [<= limit]. The bucket straddling [limit]
    counts as above it, so thresholds effectively round down to a bucket
    boundary — conservative for SLO accounting (never under-reports
    violations). [0] for a negative [limit]. *)

val merge_into : dst:t -> t -> unit
val copy : t -> t

val diff : current:t -> previous:t -> t
(** Bucket-wise window between two snapshots of the same monotonically
    growing histogram: counts, sum and buckets are the differences
    (clamped at 0). The window maximum is not derivable from bucket
    counts, so the result carries [current]'s cumulative max. *)

type summary = {
  h_count : int;
  h_sum : int;
  h_mean : float;
  h_max : int;
  h_p50 : int;
  h_p95 : int;
  h_p99 : int;
}
(** Single-record summary for reports. *)

val summary : t -> summary
(** Total on all inputs: an empty histogram yields the all-zero summary
    ([h_count = 0] distinguishes it) — never NaN and never an exception.
    Report renderers show such rows as ["n/a"]. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
