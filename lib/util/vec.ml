(* Growable array with O(1) amortised push and O(1) clear, reused across
   transaction attempts to avoid per-retry allocation.  A dummy element fills
   unused capacity (OCaml arrays cannot be partially initialised). *)

type 'a t = { mutable data : 'a array; mutable length : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () = { data = Array.make (max capacity 1) dummy; length = 0; dummy }

let length t = t.length
let is_empty t = t.length = 0

let push t x =
  if t.length = Array.length t.data then begin
    let bigger = Array.make (2 * t.length) t.dummy in
    Array.blit t.data 0 bigger 0 t.length;
    t.data <- bigger
  end;
  t.data.(t.length) <- x;
  t.length <- t.length + 1

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.length then invalid_arg "Vec.set";
  t.data.(i) <- x

let clear t = t.length <- 0

let deep_clear t =
  Array.fill t.data 0 (Array.length t.data) t.dummy;
  t.length <- 0

(* Bounded deep clear: only the used prefix can hold non-dummy elements
   (push never skips slots), so overwriting [0, length) releases every
   reference in O(length) rather than O(capacity). *)
let wipe t =
  Array.fill t.data 0 t.length t.dummy;
  t.length <- 0

let resident t =
  let n = ref 0 in
  Array.iter (fun x -> if x != t.dummy then incr n) t.data;
  !n

let iter f t =
  for i = 0 to t.length - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.length - 1 do
    f i t.data.(i)
  done

let exists predicate t =
  let rec loop i = i < t.length && (predicate t.data.(i) || loop (i + 1)) in
  loop 0

let for_all predicate t =
  let rec loop i = i >= t.length || (predicate t.data.(i) && loop (i + 1)) in
  loop 0

let find_opt predicate t =
  let rec loop i =
    if i >= t.length then None
    else if predicate t.data.(i) then Some t.data.(i)
    else loop (i + 1)
  in
  loop 0

let count predicate t =
  let n = ref 0 in
  iter (fun x -> if predicate x then incr n) t;
  !n

let to_list t =
  let rec loop acc i = if i < 0 then acc else loop (t.data.(i) :: acc) (i - 1) in
  loop [] (t.length - 1)
