(** Open-addressing map from non-negative int keys to int values with O(1)
    amortised insert/lookup and O(1) [clear] (epoch stamping — no
    per-clear allocation or array fill). Built for the transaction
    descriptor's write-set/lock-set/visible-hold indexes; not thread-safe
    (single owner). Raises [Invalid_argument] on negative keys. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is rounded up to a power of two, minimum 8. *)

val find : t -> int -> int
(** The value bound to the key, or [-1] when absent (values are expected
    to be non-negative indexes; no option allocation on the hot path). *)

val mem : t -> int -> bool

val set : t -> int -> int -> unit
(** Insert or overwrite. Grows (and re-hashes) at load factor 1/2. *)

val clear : t -> unit
(** Drop every binding in O(1). Capacity is retained. *)

val length : t -> int
(** Number of live bindings. *)

val capacity : t -> int
(** Current slot count (diagnostic / tests). *)

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] applies [f key value] to each live binding, in slot order. *)
