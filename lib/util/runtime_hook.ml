(* Execution-environment hook.

   The STM engine runs in two environments: real OCaml domains, and simulated
   cores (effect-handler fibers scheduled in virtual time, see
   [Partstm_simcore.Sim]).  The engine reports what it is doing through
   [charge]; in domain mode the default implementations are (near) no-ops, in
   simulator mode [Partstm_simcore.Sim_env.install] replaces them with
   cost-charging yields.

   The hooks are process-global and must be installed before workers start;
   installing while transactions run is a programming error. *)

type event =
  | Step of int  (** generic work, n abstract cycles *)
  | Read_invisible
  | Read_visible  (** first visible read of an orec: atomic RMW *)
  | Lock_acquire
  | Write_entry
  | Commit_fixed
  | Validate_entry
  | Abort_restart
  | First_touch  (** partition in-flight registration *)
  | Backoff of int  (** contention-manager delay, n cycles *)

(* In domain mode most events cost nothing extra (the hardware is doing the
   real work), but contention-manager backoff must actually delay. *)
let default_charge = function
  | Backoff n ->
      for _ = 1 to n do
        Domain.cpu_relax ()
      done
  | Step _ | Read_invisible | Read_visible | Lock_acquire | Write_entry | Commit_fixed
  | Validate_entry | Abort_restart | First_touch ->
      ()

let default_relax () = Domain.cpu_relax ()

(* Critical sections: engine phases that must not be interrupted by the
   simulator's fault-injection plane (e.g. the commit publish/release
   sequence, which is not abortable once started).  In domain mode this is
   the identity; under the simulator [Sim_env] installs a mask that defers
   injected kills until the section ends. *)
let default_critical f = f ()

let charge_ref = ref default_charge
let relax_ref = ref default_relax
let critical_ref = ref default_critical

let charge event = !charge_ref event
let relax () = !relax_ref ()
let critical f = !critical_ref f

let install ?(critical = default_critical) ~charge ~relax () =
  charge_ref := charge;
  relax_ref := relax;
  critical_ref := critical

let reset () =
  charge_ref := default_charge;
  relax_ref := default_relax;
  critical_ref := default_critical
