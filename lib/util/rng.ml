(* Deterministic pseudo-random streams.

   The harness needs reproducible runs: every worker (real domain or simulated
   core) owns an independent stream derived from a master seed, so results do
   not depend on scheduling.  splitmix64 seeds an xoshiro256** state. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  master_seed : int;  (* the [make] seed this stream descends from *)
}

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let make seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3; master_seed = seed }

let split t ~index =
  (* Derive an independent stream; mixing the parent's next output with the
     stream index keeps sibling streams decorrelated. *)
  let state = ref (Int64.add t.s0 (Int64.of_int ((index + 1) * 0x2545F491))) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3; master_seed = t.master_seed }

(* Every failure report prints one reproducing seed: the master seed
   survives [split], so any derived stream can name the run that made it. *)
let seed t = t.master_seed

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let bits t = Int64.to_int (next_int64 t) land max_int

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  if Bits.is_power_of_two bound then bits t land (bound - 1)
  else
    (* Rejection sampling to avoid modulo bias. *)
    let rec loop () =
      let r = bits t in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then loop () else v
    in
    loop ()

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range";
  lo + int t (hi - lo + 1)

let float t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1p-53

let bool t = bits t land 1 = 1

let chance t ~percent = int t 100 < percent

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Zipf-distributed sampler over [0, n); used for skewed access patterns.
   Precomputes the CDF, sampling is a binary search. *)
type zipf = { cdf : float array }

let zipf ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { cdf }

let zipf_sample t z =
  let u = float t in
  let cdf = z.cdf in
  let n = Array.length cdf in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (n - 1)
