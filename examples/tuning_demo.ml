(* Tuning demo: the paper's pitch in one program.

   A multi-structure application (hot update-heavy list, large read-mostly
   tree, scan-updated statistics array, hash set) runs on the simulated
   16-core machine twice: once with one global STM configuration, once with
   per-partition runtime tuning.  The demo prints the throughput of both,
   the tuner's decisions, and the per-partition statistics that drove them.

     dune exec examples/tuning_demo.exe *)

open Partstm_core
open Partstm_harness
open Partstm_workloads

let run ~strategy =
  let system = System.create ~max_workers:24 () in
  let app = Mixed.setup system ~strategy Mixed.default_config in
  Registry.reset_stats (System.registry system);
  let tuner = if Strategy.uses_tuner strategy then Some (System.tuner system) else None in
  let result =
    Driver.run ?tuner ~mode:(Driver.default_sim ~cycles:3_000_000 ()) ~workers:16 (fun ctx ->
        Mixed.worker app ctx)
  in
  assert (Mixed.check app);
  (result.Driver.throughput, tuner, system)

let () =
  print_endline "Running the mixed application on 16 simulated cores...\n";
  let untuned, _, _ = run ~strategy:Strategy.global_invisible in
  let tuned, tuner, system = run ~strategy:Strategy.tuned in
  Printf.printf "one global configuration : %8.0f txn/Mcycle\n" untuned;
  Printf.printf "per-partition tuned      : %8.0f txn/Mcycle  (%+.0f%%)\n\n" tuned
    (100.0 *. ((tuned /. untuned) -. 1.0));
  (match tuner with
  | Some tuner ->
      Printf.printf "What the tuner did:\n";
      List.iter (fun ev -> Format.printf "  %a@." Tuner.pp_event ev) (Tuner.trace tuner)
  | None -> ());
  print_newline ();
  let table =
    Partstm_util.Table.create ~title:"Per-partition profile (tuned run)"
      ~header:[ "partition"; "access%"; "update-ratio"; "abort-rate"; "final mode" ]
  in
  List.iter
    (fun row ->
      Partstm_util.Table.add_row table
        [
          row.Registry.row_name;
          Printf.sprintf "%.1f" (100.0 *. row.Registry.row_access_share);
          Printf.sprintf "%.2f" (Partstm_stm.Region_stats.update_txn_ratio row.Registry.row_stats);
          Printf.sprintf "%.2f" (Partstm_stm.Region_stats.abort_rate row.Registry.row_stats);
          Fmt.str "%a" Partstm_stm.Mode.pp row.Registry.row_mode;
        ])
    (Registry.report (System.registry system));
  Partstm_util.Table.print table;
  print_endline "\ntuning demo OK"
