(* Quickstart: the smallest complete partstm program.

   Creates a system, one partition, two transactional variables, and runs
   an atomic transfer between them from several domains in parallel.

     dune exec examples/quickstart.exe *)

open Partstm_stm
open Partstm_core

let () =
  (* One system = one STM engine + a partition registry. *)
  let system = System.create () in

  (* Partitions are the unit of tuning; allocate tvars inside them. *)
  let accounts = System.partition system "accounts" in
  let alice = System.tvar accounts 1000 in
  let bob = System.tvar accounts 0 in

  (* Each worker owns one reusable transaction descriptor. *)
  let transfer ~worker_id ~amount ~repeat =
    let txn = System.descriptor system ~worker_id in
    for _ = 1 to repeat do
      System.atomically txn (fun t ->
          let from_balance = System.read t alice in
          if from_balance >= amount then begin
            System.write t alice (from_balance - amount);
            System.write t bob (System.read t bob + amount)
          end)
    done
  in

  (* Four domains transfer concurrently; atomicity keeps the books exact. *)
  let domains =
    List.init 4 (fun worker_id ->
        Domain.spawn (fun () -> transfer ~worker_id ~amount:1 ~repeat:250))
  in
  List.iter Domain.join domains;

  Printf.printf "alice = %d, bob = %d, total = %d\n" (Tvar.peek alice) (Tvar.peek bob)
    (Tvar.peek alice + Tvar.peek bob);
  assert (Tvar.peek alice + Tvar.peek bob = 1000);
  print_endline "quickstart OK"
