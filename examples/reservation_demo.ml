(* Reservation demo: composing transactional data structures into an
   application — a miniature travel-booking system (the vacation workload's
   domain) with an exact conservation invariant.

     dune exec examples/reservation_demo.exe *)

open Partstm_core
open Partstm_harness
open Partstm_workloads

let () =
  let system = System.create ~max_workers:16 () in
  let config = { Vacation.default_config with items_per_table = 64; customer_range = 64 } in
  let app = Vacation.setup system ~strategy:Strategy.tuned config in
  Registry.reset_stats (System.registry system);
  let tuner = System.tuner system in
  let result =
    Driver.run ~tuner ~mode:(Driver.default_sim ~cycles:1_500_000 ()) ~workers:8 (fun ctx ->
        Vacation.worker app ctx)
  in
  Printf.printf "processed %d reservation-system transactions on 8 simulated cores\n"
    result.Driver.total_ops;
  Printf.printf "conservation invariant (capacity - available = outstanding reservations): %s\n"
    (if Vacation.check app then "HOLDS" else "VIOLATED");
  List.iter
    (fun row ->
      Printf.printf "  %-20s %5.1f%% of accesses, abort rate %.2f\n" row.Registry.row_name
        (100.0 *. row.Registry.row_access_share)
        (Partstm_stm.Region_stats.abort_rate row.Registry.row_stats))
    (Registry.report (System.registry system));
  assert (Vacation.check app);
  print_endline "reservation demo OK"
