(* Bank demo: concurrent transfers and audits over a transactional array,
   with live statistics from the partition runtime.

     dune exec examples/bank_demo.exe *)

open Partstm_stm
open Partstm_core
module Structures = Partstm_structures

let accounts = 256
let initial_balance = 100

let () =
  let system = System.create () in
  let partition = System.partition system "bank" in
  let book = Structures.Tarray.make partition ~length:accounts initial_balance in
  let stop = Atomic.make false in

  (* Three domains transfer money between random accounts. *)
  let transfer_domains =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            let txn = System.descriptor system ~worker_id:i in
            let rng = Partstm_util.Rng.make (i + 1) in
            while not (Atomic.get stop) do
              let src = Partstm_util.Rng.int rng accounts in
              let dst = Partstm_util.Rng.int rng accounts in
              let amount = 1 + Partstm_util.Rng.int rng 20 in
              System.atomically txn (fun t ->
                  if src <> dst then begin
                    Structures.Tarray.modify t book src (fun b -> b - amount);
                    Structures.Tarray.modify t book dst (fun b -> b + amount)
                  end)
            done))
  in

  (* One domain audits the whole book: every audit must see the exact
     total, no matter how many transfers are in flight. *)
  let auditor =
    Domain.spawn (fun () ->
        let txn = System.descriptor system ~worker_id:3 in
        let audits = ref 0 in
        while not (Atomic.get stop) do
          let total = System.atomically txn (fun t -> Structures.Tarray.fold t book ( + ) 0) in
          assert (total = accounts * initial_balance);
          incr audits
        done;
        !audits)
  in

  Unix.sleepf 1.0;
  Atomic.set stop true;
  List.iter Domain.join transfer_domains;
  let audits = Domain.join auditor in

  let stats = Partition.snapshot partition in
  Printf.printf "audits completed: %d (every one saw the exact total)\n" audits;
  Printf.printf "commits: %d, aborts: %d (abort rate %.1f%%)\n" stats.Region_stats.s_commits
    stats.Region_stats.s_aborts
    (100.0 *. Region_stats.abort_rate stats);
  Printf.printf "final total: %d (expected %d)\n"
    (Structures.Tarray.peek_fold book ( + ) 0)
    (accounts * initial_balance);
  print_endline "bank demo OK"
